//! End-to-end integration tests: the full wrap → mediate → query → verify
//! → render pipeline across every crate, at non-trivial scale.

use strudel::repo::{Database, IndexLevel};
use strudel::schema::constraint::verify::Verdict;
use strudel::struql::{EvalOptions, Evaluator};
use strudel_bench::{paper_homepage_site, paper_news_corpus, paper_org_site};
use strudel_workload::{news, org};

#[test]
fn homepage_pipeline_at_paper_scale() {
    let site = paper_homepage_site(40);
    assert_eq!(site.stats.sources, 2);
    assert!(site.stats.site_nodes > 80, "site nodes: {}", site.stats.site_nodes);

    let out = site.render().unwrap();
    assert!(out.pages.len() > 40, "pages: {}", out.pages.len());

    // Every page is non-empty HTML.
    for p in &out.pages {
        assert!(!p.html.trim().is_empty(), "{} is empty", p.name);
    }
    // Every internal link on every page resolves to a generated page.
    assert!(out.broken_links().is_empty(), "{:?}", out.broken_links());
}

#[test]
fn org_pipeline_with_verification() {
    let data = org::generate(&org::OrgConfig {
        people: 120,
        ..Default::default()
    });
    let site = strudel::sites::org_site(
        &data.people_csv,
        &data.departments_csv,
        &data.projects_rec,
        &data.demos_rec,
        &data.legacy_html,
    )
    .constraint("forall p in PersonPages : exists r in OrgRoot : r -> * -> p")
    .constraint("forall d in DeptPages : exists r in OrgRoot : r -> * -> d")
    .build()
    .unwrap();

    for v in &site.verifications {
        assert_eq!(v.static_verdict, Verdict::Proved, "{}", v.constraint.source);
        assert!(v.runtime_result.holds, "{}", v.constraint.source);
    }

    // All 120 people have pages reachable from the root.
    let out = site.render().unwrap();
    let person_pages = out
        .pages
        .iter()
        .filter(|p| p.name.starts_with("PersonPage"))
        .count();
    assert_eq!(person_pages, 120);
}

#[test]
fn news_pipeline_cross_checks_with_dynamic_engine() {
    use strudel::schema::dynamic::{DynTarget, DynamicSite, Mode};
    let corpus = paper_news_corpus(80);
    let site = strudel::sites::news_site(&corpus).build().unwrap();
    let static_result = &site.result;

    let engine = DynamicSite::new(site.database.clone(), &site.program, Mode::Context);
    let roots = engine.roots("FrontRoot").unwrap();
    assert_eq!(roots.len(), 1);
    let front = engine.visit(&roots[0]).unwrap();

    // The dynamic front page lists exactly the statically materialized
    // sections and headlines.
    let front_oid = static_result.skolem_node("FrontPage", &[]).unwrap();
    let static_sections = static_result
        .graph
        .attr_str(front_oid, "Section")
        .count();
    let dynamic_sections = front
        .edges
        .iter()
        .filter(|(l, _)| l == "Section")
        .count();
    assert_eq!(static_sections, dynamic_sections);

    // Follow one section and cross-check its story list.
    let (_, DynTarget::Page(section_key)) = front
        .edges
        .iter()
        .find(|(l, _)| l == "Section")
        .unwrap()
        .clone()
    else {
        panic!("section link is a page");
    };
    let section_view = engine.visit(&section_key).unwrap();
    let section_oid = static_result
        .skolem_node(&section_key.symbol, &section_key.args)
        .unwrap();
    assert_eq!(
        static_result.graph.attr_str(section_oid, "Story").count(),
        section_view.edges.iter().filter(|(l, _)| l == "Story").count()
    );
}

#[test]
fn optimizer_and_indexes_are_transparent_at_scale() {
    let corpus = news::generate(&news::NewsConfig {
        articles: 150,
        ..Default::default()
    });
    let docs = strudel::wrappers::html::HtmlDoc::from_pairs(&corpus.pages);
    let g = strudel::wrappers::html::wrap_documents(&docs, "Articles").unwrap();
    let program = strudel::struql::parse(strudel::sites::NEWS_QUERY).unwrap();

    let mut signatures = Vec::new();
    for level in [IndexLevel::None, IndexLevel::ExtensionOnly, IndexLevel::Full] {
        for optimize in [false, true] {
            let db = Database::from_graph(g.clone(), level);
            let r = Evaluator::with_options(&db, EvalOptions { optimize, ..Default::default() })
                .eval(&program)
                .unwrap();
            signatures.push((r.new_nodes.len(), r.graph.edge_count()));
        }
    }
    assert!(
        signatures.windows(2).all(|w| w[0] == w[1]),
        "all configurations agree: {signatures:?}"
    );
}

#[test]
fn composed_query_pipeline_adds_navigation() {
    // The suciu example of §5.1: the site graph "is built in several
    // successive steps by multiple, composed STRUQL queries; the last step
    // copies the entire site graph and adds a navigation bar".
    let site = paper_homepage_site(15);
    let db2 = Database::from_graph(site.result.graph.clone(), IndexLevel::Full);
    let nav_query = strudel::struql::parse(
        r#"
        create NavBar()
        link NavBar() -> "home" -> "HomePage.html",
             NavBar() -> "abstracts" -> "AbstractsPage.html"

        where PaperPages(p)
        create Framed(p)
        link Framed(p) -> "content" -> p,
             Framed(p) -> "nav" -> NavBar()
        collect FramedPages(Framed(p))
    "#,
    )
    .unwrap();
    let r2 = Evaluator::new(&db2).eval(&nav_query).unwrap();
    let framed = r2.graph.members_str("FramedPages");
    assert_eq!(framed.len(), 15);
    let nav = r2.skolem_node("NavBar", &[]).unwrap();
    for f in framed {
        let f = f.as_node().unwrap();
        assert_eq!(
            r2.graph.first_attr_str(f, "nav"),
            Some(&strudel::graph::Value::Node(nav))
        );
    }
}

#[test]
fn org_paper_scale_smoke() {
    // The full ~400-person site builds and renders without error.
    let site = paper_org_site(400);
    let out = site.render().unwrap();
    assert!(out.pages.len() > 450, "pages: {}", out.pages.len());
}
