//! Cross-crate property tests: randomized data graphs and queries flowing
//! through the whole stack.

use proptest::prelude::*;
use strudel::repo::{Database, IndexLevel};
use strudel::struql::{EvalOptions, Evaluator};
use strudel_graph::{Graph, Value};

/// A random Publications-like graph: `n` nodes, each with a random subset
/// of attributes (the irregularity the system exists for).
fn pub_graph() -> impl Strategy<Value = Graph> {
    (
        1usize..25,
        prop::collection::vec(
            (
                prop::bool::ANY, // has year
                1990i64..2000,
                prop::bool::ANY, // has month
                0usize..12,
                prop::bool::ANY, // has category
                0usize..4,
                1usize..4, // authors
            ),
            1..25,
        ),
    )
        .prop_map(|(_, rows)| {
            let mut g = Graph::new();
            const MONTHS: [&str; 12] = [
                "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov",
                "Dec",
            ];
            const CATS: [&str; 4] = ["web", "db", "systems", "theory"];
            for (i, (has_y, y, has_m, m, has_c, c, n_auth)) in rows.iter().enumerate() {
                let node = g.add_named_node(&format!("p{i}"));
                g.add_edge_str(node, "title", Value::string(format!("Title {i}")));
                if *has_y {
                    g.add_edge_str(node, "year", Value::Int(*y));
                }
                if *has_m {
                    g.add_edge_str(node, "month", Value::string(MONTHS[*m]));
                }
                if *has_c {
                    g.add_edge_str(node, "category", Value::string(CATS[*c]));
                }
                for a in 0..*n_auth {
                    g.add_edge_str(node, "author", Value::string(format!("Author {a}")));
                }
                g.collect_str("Publications", node);
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The Fig. 3 query never fails on irregular data, and its output obeys
    /// the structural invariants: one presentation per publication, one
    /// year page per distinct year, presentations copy exactly their
    /// publication's edges.
    #[test]
    fn homepage_query_invariants(g in pub_graph()) {
        let db = Database::from_graph(g, IndexLevel::Full);
        let program = strudel::struql::parse(strudel::sites::HOMEPAGE_QUERY).unwrap();
        let r = Evaluator::new(&db).eval(&program).unwrap();

        let pubs = db.graph().members_str("Publications").to_vec();
        prop_assert_eq!(r.graph.members_str("PaperPages").len(), pubs.len());

        let mut years = std::collections::HashSet::new();
        for m in &pubs {
            let o = m.as_node().unwrap();
            for v in db.graph().attr_str(o, "year") {
                years.insert(v.clone());
            }
            let pres = r.skolem_node("PaperPresentation", std::slice::from_ref(m)).unwrap();
            prop_assert_eq!(r.graph.edges(pres).len(), db.graph().edges(o).len());
        }
        prop_assert_eq!(r.graph.members_str("YearPages").len(), years.len());
    }

    /// Optimized and unoptimized evaluation agree on arbitrary irregular
    /// graphs, at every index level.
    #[test]
    fn plan_and_index_transparency(g in pub_graph()) {
        let program = strudel::struql::parse(
            r#"
            where Publications(x), x -> "year" -> y, y >= 1995
            create P(x), Y(y)
            link Y(y) -> "paper" -> P(x)
            collect Out(P(x))
        "#,
        )
        .unwrap();
        let mut results = Vec::new();
        for level in [IndexLevel::None, IndexLevel::Full] {
            for optimize in [false, true] {
                let db = Database::from_graph(g.clone(), level);
                let r = Evaluator::with_options(&db, EvalOptions { optimize })
                    .eval(&program)
                    .unwrap();
                results.push((r.new_nodes.len(), r.graph.members_str("Out").len()));
            }
        }
        prop_assert!(results.windows(2).all(|w| w[0] == w[1]), "{:?}", results);
    }

    /// Incremental maintenance equals full re-evaluation for arbitrary
    /// single-publication inserts.
    #[test]
    fn incremental_equals_full(g in pub_graph(), year in 1990i64..2000) {
        use strudel::schema::incremental::{graphs_equivalent, incremental_update};
        let db = Database::from_graph(g, IndexLevel::Full);
        let program = strudel::struql::parse(strudel::sites::HOMEPAGE_QUERY).unwrap();
        let old = Evaluator::new(&db).eval(&program).unwrap();

        let base = db.graph().node_count();
        let mut delta = strudel_graph::GraphDelta::new();
        delta.add_node(Some("fresh"));
        let oid = strudel_graph::Oid::from_index(base);
        delta.add_edge(oid, "title", Value::string("Fresh"));
        delta.add_edge(oid, "year", Value::Int(year));
        delta.collect("Publications", Value::Node(oid));

        let inc = incremental_update(&program, &db, &delta, old).unwrap();
        prop_assert!(!inc.full_reeval);

        let mut g2 = db.graph().clone();
        delta.apply(&mut g2).unwrap();
        let db2 = Database::from_graph(g2, IndexLevel::Full);
        let full = Evaluator::new(&db2).eval(&program).unwrap();
        prop_assert!(graphs_equivalent(&inc.result.graph, &full.graph));
    }

    /// DRed deletions agree with full re-evaluation: for every Skolem key
    /// the full evaluation produces, the incrementally maintained site has
    /// the same out-edges; orphaned pages (keys absent from the full
    /// evaluation) carry no derived content.
    #[test]
    fn dred_deletions_match_full(g in pub_graph(), victim in 0usize..25) {
        use strudel::schema::incremental::incremental_update;
        let pubs = g.members_str("Publications").to_vec();
        let victim = &pubs[victim % pubs.len()];
        let victim_oid = victim.as_node().unwrap();

        let db = Database::from_graph(g.clone(), IndexLevel::Full);
        let program = strudel::struql::parse(strudel::sites::HOMEPAGE_QUERY).unwrap();
        let old = Evaluator::new(&db).eval(&program).unwrap();

        // Delete either the membership or the year edge (when present).
        let mut delta = strudel_graph::GraphDelta::new();
        match db.graph().first_attr_str(victim_oid, "year").cloned() {
            Some(y) => delta.remove_edge(victim_oid, "year", y),
            None => delta.uncollect("Publications", victim.clone()),
        }

        let inc = incremental_update(&program, &db, &delta, old).unwrap();
        prop_assert!(!inc.full_reeval);

        let mut g2 = db.graph().clone();
        delta.apply(&mut g2).unwrap();
        let db2 = Database::from_graph(g2, IndexLevel::Full);
        let full = Evaluator::new(&db2).eval(&program).unwrap();

        // Compare per-Skolem-key edge multisets. Node targets are compared
        // through the key correspondence.
        let full_keys: Vec<(String, Vec<Value>)> = full
            .skolem
            .iter()
            .map(|(k, _)| (k.symbol.to_string(), k.args.to_vec()))
            .collect();
        for (symbol, args) in &full_keys {
            let f_oid = full.skolem_node(symbol, args).unwrap();
            let i_oid = inc
                .result
                .skolem_node(symbol, args)
                .expect("incremental site has every live page");
            let mut f_edges: Vec<(String, String)> = full
                .graph
                .edges(f_oid)
                .iter()
                .map(|e| {
                    let target = match &e.to {
                        Value::Node(o) => full
                            .graph
                            .node_name(*o)
                            .map(str::to_owned)
                            .unwrap_or_else(|| format!("{o}")),
                        other => format!("{other}"),
                    };
                    (full.graph.label_name(e.label).to_owned(), target)
                })
                .collect();
            let mut i_edges: Vec<(String, String)> = inc
                .result
                .graph
                .edges(i_oid)
                .iter()
                .map(|e| {
                    let target = match &e.to {
                        Value::Node(o) => inc
                            .result
                            .graph
                            .node_name(*o)
                            .map(str::to_owned)
                            .unwrap_or_else(|| format!("{o}")),
                        other => format!("{other}"),
                    };
                    (inc.result.graph.label_name(e.label).to_owned(), target)
                })
                .collect();
            f_edges.sort();
            i_edges.sort();
            prop_assert_eq!(&f_edges, &i_edges, "{}({:?}) diverged", symbol, args);
        }
        // Orphans: keys the full evaluation no longer creates must be bare.
        for (key, oid) in inc.result.skolem.iter() {
            let alive = full
                .skolem_node(&key.symbol, &key.args)
                .is_some();
            if !alive {
                prop_assert_eq!(
                    inc.result.graph.edges(oid).len(),
                    0,
                    "orphan {:?} kept content",
                    key
                );
            }
        }
    }

    /// The HTML generator never panics and always escapes markup from
    /// data: rendered pages contain no raw `<script` coming from titles.
    #[test]
    fn rendering_is_safe_for_hostile_titles(n in 1usize..8) {
        let mut g = Graph::new();
        let root = g.add_named_node("Root");
        for i in 0..n {
            let p = g.add_named_node(&format!("p{i}"));
            g.add_edge_str(
                p,
                "title",
                Value::string(format!("<script>alert({i})</script>")),
            );
            g.add_edge_str(root, "child", Value::Node(p));
        }
        let mut ts = strudel::template::TemplateSet::new();
        ts.add_template("t", "<h1><SFMT title></h1><SFMT child UL>").unwrap();
        ts.set_default("t");
        let out = strudel::template::HtmlGenerator::new(&g, &ts)
            .generate(&[root])
            .unwrap();
        for p in &out.pages {
            prop_assert!(!p.html.contains("<script>alert"));
        }
    }
}
