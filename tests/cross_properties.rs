//! Cross-crate property tests: randomized data graphs and queries flowing
//! through the whole stack, generated from a deterministic seeded PRNG.

use strudel::repo::{Database, IndexLevel};
use strudel::struql::{EvalOptions, Evaluator};
use strudel_graph::{Graph, Value};
use strudel_prng::{Rng, SeedableRng, SmallRng};

/// A random Publications-like graph: nodes with a random subset of
/// attributes (the irregularity the system exists for).
fn pub_graph(rng: &mut SmallRng) -> Graph {
    const MONTHS: [&str; 12] = [
        "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
    ];
    const CATS: [&str; 4] = ["web", "db", "systems", "theory"];
    let rows = rng.gen_range(1..25usize);
    let mut g = Graph::new();
    for i in 0..rows {
        let node = g.add_named_node(&format!("p{i}"));
        g.add_edge_str(node, "title", Value::string(format!("Title {i}")));
        if rng.gen_bool(0.5) {
            g.add_edge_str(node, "year", Value::Int(rng.gen_range(1990i64..2000)));
        }
        if rng.gen_bool(0.5) {
            let m = rng.gen_range(0..12usize);
            g.add_edge_str(node, "month", Value::string(MONTHS[m]));
        }
        if rng.gen_bool(0.5) {
            let c = rng.gen_range(0..4usize);
            g.add_edge_str(node, "category", Value::string(CATS[c]));
        }
        for a in 0..rng.gen_range(1..4usize) {
            g.add_edge_str(node, "author", Value::string(format!("Author {a}")));
        }
        g.collect_str("Publications", node);
    }
    g
}

const CASES: u64 = 32;

/// The Fig. 3 query never fails on irregular data, and its output obeys
/// the structural invariants: one presentation per publication, one
/// year page per distinct year, presentations copy exactly their
/// publication's edges.
#[test]
fn homepage_query_invariants() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = pub_graph(&mut rng);
        let db = Database::from_graph(g, IndexLevel::Full);
        let program = strudel::struql::parse(strudel::sites::HOMEPAGE_QUERY).unwrap();
        let r = Evaluator::new(&db).eval(&program).unwrap();

        let pubs = db.graph().members_str("Publications").to_vec();
        assert_eq!(
            r.graph.members_str("PaperPages").len(),
            pubs.len(),
            "seed {seed}"
        );

        let mut years = std::collections::HashSet::new();
        for m in &pubs {
            let o = m.as_node().unwrap();
            for v in db.graph().attr_str(o, "year") {
                years.insert(v.clone());
            }
            let pres = r
                .skolem_node("PaperPresentation", std::slice::from_ref(m))
                .unwrap();
            assert_eq!(
                r.graph.edges(pres).len(),
                db.graph().edges(o).len(),
                "seed {seed}"
            );
        }
        assert_eq!(r.graph.members_str("YearPages").len(), years.len(), "seed {seed}");
    }
}

/// Optimized and unoptimized evaluation agree on arbitrary irregular
/// graphs, at every index level.
#[test]
fn plan_and_index_transparency() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(100 + seed);
        let g = pub_graph(&mut rng);
        let program = strudel::struql::parse(
            r#"
            where Publications(x), x -> "year" -> y, y >= 1995
            create P(x), Y(y)
            link Y(y) -> "paper" -> P(x)
            collect Out(P(x))
        "#,
        )
        .unwrap();
        let mut results = Vec::new();
        for level in [IndexLevel::None, IndexLevel::Full] {
            for optimize in [false, true] {
                let db = Database::from_graph(g.clone(), level);
                let r = Evaluator::with_options(&db, EvalOptions { optimize, ..Default::default() })
                    .eval(&program)
                    .unwrap();
                results.push((r.new_nodes.len(), r.graph.members_str("Out").len()));
            }
        }
        assert!(
            results.windows(2).all(|w| w[0] == w[1]),
            "seed {seed}: {results:?}"
        );
    }
}

/// Incremental maintenance equals full re-evaluation for arbitrary
/// single-publication inserts.
#[test]
fn incremental_equals_full() {
    use strudel::schema::incremental::{graphs_equivalent, incremental_update};
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(200 + seed);
        let g = pub_graph(&mut rng);
        let year = rng.gen_range(1990i64..2000);
        let db = Database::from_graph(g, IndexLevel::Full);
        let program = strudel::struql::parse(strudel::sites::HOMEPAGE_QUERY).unwrap();
        let old = Evaluator::new(&db).eval(&program).unwrap();

        let base = db.graph().node_count();
        let mut delta = strudel_graph::GraphDelta::new();
        delta.add_node(Some("fresh"));
        let oid = strudel_graph::Oid::from_index(base);
        delta.add_edge(oid, "title", Value::string("Fresh"));
        delta.add_edge(oid, "year", Value::Int(year));
        delta.collect("Publications", Value::Node(oid));

        let inc = incremental_update(&program, &db, &delta, old).unwrap();
        assert!(!inc.full_reeval, "seed {seed}");

        let mut g2 = db.graph().clone();
        delta.apply(&mut g2).unwrap();
        let db2 = Database::from_graph(g2, IndexLevel::Full);
        let full = Evaluator::new(&db2).eval(&program).unwrap();
        assert!(
            graphs_equivalent(&inc.result.graph, &full.graph),
            "seed {seed}"
        );
    }
}

/// DRed deletions agree with full re-evaluation: for every Skolem key
/// the full evaluation produces, the incrementally maintained site has
/// the same out-edges; orphaned pages (keys absent from the full
/// evaluation) carry no derived content.
#[test]
fn dred_deletions_match_full() {
    use strudel::schema::incremental::incremental_update;
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(300 + seed);
        let g = pub_graph(&mut rng);
        let victim_idx = rng.gen_range(0..25usize);
        let pubs = g.members_str("Publications").to_vec();
        let victim = &pubs[victim_idx % pubs.len()];
        let victim_oid = victim.as_node().unwrap();

        let db = Database::from_graph(g.clone(), IndexLevel::Full);
        let program = strudel::struql::parse(strudel::sites::HOMEPAGE_QUERY).unwrap();
        let old = Evaluator::new(&db).eval(&program).unwrap();

        // Delete either the membership or the year edge (when present).
        let mut delta = strudel_graph::GraphDelta::new();
        match db.graph().first_attr_str(victim_oid, "year").cloned() {
            Some(y) => delta.remove_edge(victim_oid, "year", y),
            None => delta.uncollect("Publications", victim.clone()),
        }

        let inc = incremental_update(&program, &db, &delta, old).unwrap();
        assert!(!inc.full_reeval, "seed {seed}");

        let mut g2 = db.graph().clone();
        delta.apply(&mut g2).unwrap();
        let db2 = Database::from_graph(g2, IndexLevel::Full);
        let full = Evaluator::new(&db2).eval(&program).unwrap();

        // Compare per-Skolem-key edge multisets. Node targets are compared
        // through the key correspondence.
        let full_keys: Vec<(String, Vec<Value>)> = full
            .skolem
            .iter()
            .map(|(k, _)| (k.symbol.to_string(), k.args.to_vec()))
            .collect();
        for (symbol, args) in &full_keys {
            let f_oid = full.skolem_node(symbol, args).unwrap();
            let i_oid = inc
                .result
                .skolem_node(symbol, args)
                .expect("incremental site has every live page");
            let mut f_edges: Vec<(String, String)> = full
                .graph
                .edges(f_oid)
                .iter()
                .map(|e| {
                    let target = match &e.to {
                        Value::Node(o) => full
                            .graph
                            .node_name(*o)
                            .map(str::to_owned)
                            .unwrap_or_else(|| format!("{o}")),
                        other => format!("{other}"),
                    };
                    (full.graph.label_name(e.label).to_owned(), target)
                })
                .collect();
            let mut i_edges: Vec<(String, String)> = inc
                .result
                .graph
                .edges(i_oid)
                .iter()
                .map(|e| {
                    let target = match &e.to {
                        Value::Node(o) => inc
                            .result
                            .graph
                            .node_name(*o)
                            .map(str::to_owned)
                            .unwrap_or_else(|| format!("{o}")),
                        other => format!("{other}"),
                    };
                    (inc.result.graph.label_name(e.label).to_owned(), target)
                })
                .collect();
            f_edges.sort();
            i_edges.sort();
            assert_eq!(
                &f_edges, &i_edges,
                "seed {seed}: {symbol}({args:?}) diverged"
            );
        }
        // Orphans: keys the full evaluation no longer creates must be bare.
        for (key, oid) in inc.result.skolem.iter() {
            let alive = full.skolem_node(&key.symbol, &key.args).is_some();
            if !alive {
                assert_eq!(
                    inc.result.graph.edges(oid).len(),
                    0,
                    "seed {seed}: orphan {key:?} kept content"
                );
            }
        }
    }
}

/// The HTML generator never panics and always escapes markup from
/// data: rendered pages contain no raw `<script` coming from titles.
#[test]
fn rendering_is_safe_for_hostile_titles() {
    for seed in 0..8u64 {
        let mut rng = SmallRng::seed_from_u64(400 + seed);
        let n = rng.gen_range(1..8usize);
        let mut g = Graph::new();
        let root = g.add_named_node("Root");
        for i in 0..n {
            let p = g.add_named_node(&format!("p{i}"));
            g.add_edge_str(
                p,
                "title",
                Value::string(format!("<script>alert({i})</script>")),
            );
            g.add_edge_str(root, "child", Value::Node(p));
        }
        let mut ts = strudel::template::TemplateSet::new();
        ts.add_template("t", "<h1><SFMT title></h1><SFMT child UL>")
            .unwrap();
        ts.set_default("t");
        let out = strudel::template::HtmlGenerator::new(&g, &ts)
            .generate(&[root])
            .unwrap();
        for p in &out.pages {
            assert!(!p.html.contains("<script>alert"), "seed {seed}");
        }
    }
}
