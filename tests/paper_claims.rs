//! Tests that pin the paper's central qualitative claims, so regressions
//! in any crate that would break the reproduction story fail loudly.

use strudel::schema::constraint::{parse_constraint, runtime, verify};
use strudel::sites;
use strudel_bench::{paper_homepage_site, paper_news_corpus};

/// §5.1: "STRUDEL's power is revealed in the definition of the external
/// site: no new queries were written for that site. Both the internal and
/// external sites share the same site graph."
#[test]
fn external_site_shares_site_graph_and_costs_no_query_lines() {
    let data = strudel_workload::org::generate(&strudel_workload::org::OrgConfig {
        people: 60,
        ..Default::default()
    });
    let site = sites::org_site(
        &data.people_csv,
        &data.departments_csv,
        &data.projects_rec,
        &data.demos_rec,
        &data.legacy_html,
    )
    .build()
    .unwrap();

    let internal = site.render().unwrap();
    // Same Site value, same site graph; only templates differ.
    let external = site.render_with(&sites::org_external_templates()).unwrap();
    assert_eq!(internal.pages.len(), external.pages.len());
    // Internal-only information disappears from the external rendering.
    let phones_internal = internal.pages.iter().filter(|p| p.html.contains("Phone")).count();
    let phones_external = external.pages.iter().filter(|p| p.html.contains("Phone")).count();
    assert!(phones_internal > 0);
    assert_eq!(phones_external, 0);
}

/// §5.1: "The sports-only query is derived from the original query and
/// only differs in two extra predicates in one where clause. Both sites
/// use the same templates."
#[test]
fn sports_only_is_two_predicates_away() {
    let lines_a: Vec<&str> = sites::NEWS_QUERY.lines().map(str::trim).collect();
    let lines_b: Vec<&str> = sites::SPORTS_QUERY.lines().map(str::trim).collect();
    let differing: Vec<(&&str, &&str)> = lines_a
        .iter()
        .filter(|l| !l.starts_with("--"))
        .zip(lines_b.iter().filter(|l| !l.starts_with("--")))
        .filter(|(a, b)| a != b)
        .collect();
    assert_eq!(differing.len(), 1, "exactly one where clause differs");
    let (_, sports_line) = differing[0];
    // The two extra predicates.
    assert!(sports_line.contains("isString(c)"));
    assert!(sports_line.contains("c = \"sports\""));
}

/// §2.2: Skolem-function semantics — "a Skolem function applied to the
/// same inputs produces the same node oid" across an entire program.
#[test]
fn skolem_identity_holds_across_blocks() {
    let site = paper_homepage_site(30);
    // YearPage(y) appears in links of several blocks; the number of year
    // pages equals the number of distinct years in the data.
    let mut years: Vec<i64> = Vec::new();
    for m in site.database.graph().members_str("Publications") {
        let o = m.as_node().unwrap();
        for v in site.database.graph().attr_str(o, "year") {
            if let strudel::graph::Value::Int(y) = v {
                if !years.contains(y) {
                    years.push(*y);
                }
            }
        }
    }
    let year_pages = site
        .result
        .graph
        .members_str("YearPages")
        .len();
    assert_eq!(year_pages, years.len());
}

/// §6.2: arc variables "carry over irregularities in the data to the site
/// graph" — a presentation object has exactly its publication's
/// attributes, whatever they are.
#[test]
fn arc_variables_preserve_irregularity() {
    let site = paper_homepage_site(50);
    let data = site.database.graph();
    for m in data.members_str("Publications") {
        let pub_oid = m.as_node().unwrap();
        let pres = site
            .result
            .skolem_node("PaperPresentation", std::slice::from_ref(m))
            .expect("every publication has a presentation");
        assert_eq!(
            site.result.graph.edges(pres).len(),
            data.edges(pub_oid).len(),
            "presentation copies exactly the publication's edges"
        );
    }
}

/// §2.5: static verification is sound — everything it proves holds at
/// runtime on materialized sites of several sizes.
#[test]
fn static_verification_is_sound() {
    let constraints = [
        "forall p in PaperPages : exists r in HomeRoot : r -> * -> p",
        "forall a in AbstractPages : exists r in HomeRoot : r -> * -> a",
        r#"forall y in YearPages : y -> "Year" -> v"#,
    ];
    for entries in [5usize, 40] {
        let site = paper_homepage_site(entries);
        for src in constraints {
            let c = parse_constraint(src).unwrap();
            if verify::verify(&site.schema, &c) == verify::Verdict::Proved {
                let r = runtime::check(&site.result.graph, &c);
                assert!(r.holds, "proved but violated at {entries}: {src}");
            }
        }
    }
}

/// §6.3: author order survives the order-free data model through integer
/// keys.
#[test]
fn author_order_is_preserved_via_keys() {
    let bib = "@article{k, title={T}, author={First Person and Second Person and Third Person}, year=1998}";
    let g = strudel::wrappers::bibtex::wrap(bib).unwrap();
    let k = g.node_by_name("k").unwrap();
    let keyed: Vec<_> = g.attr_str(k, "author-keyed").collect();
    assert_eq!(keyed.len(), 3);
    for (i, v) in keyed.iter().enumerate() {
        let node = v.as_node().unwrap();
        assert_eq!(
            g.first_attr_str(node, "key"),
            Some(&strudel::graph::Value::Int(i as i64 + 1))
        );
    }
}

/// §1: "multiple versions … by applying different site-definition queries
/// to the same underlying data" — general and sports-only sites from one
/// corpus, where the sports site graph embeds into the general one.
#[test]
fn multiple_sites_from_one_database() {
    let corpus = paper_news_corpus(60);
    let general = sites::news_site(&corpus).build().unwrap();
    let sports = sites::sports_only_site(&corpus).build().unwrap();
    assert!(sports.stats.site_nodes < general.stats.site_nodes);

    // Every sports article page also exists in the general site.
    for m in sports.result.graph.members_str("ArticlePages") {
        let oid = m.as_node().unwrap();
        let name = sports.result.graph.node_name(oid).unwrap();
        // Skolem display names match across sites for the same argument.
        assert!(
            general
                .result
                .graph
                .node_by_name(name)
                .is_some(),
            "{name} missing from the general site"
        );
    }
}

/// §2.3: collection `default` directives type bare strings but "are not
/// constraints and can be overridden".
#[test]
fn ddl_defaults_type_but_do_not_constrain() {
    let g = strudel::graph::ddl::parse(
        r#"
        collection Publications { default abstract : text; }
        object a in Publications { abstract : "abs/a.txt"; }
        object b in Publications { abstract : image("shot.png"); }
    "#,
    )
    .unwrap();
    let a = g.node_by_name("a").unwrap();
    let b = g.node_by_name("b").unwrap();
    assert!(g
        .first_attr_str(a, "abstract")
        .unwrap()
        .is_file_kind(strudel::graph::FileKind::Text));
    assert!(g
        .first_attr_str(b, "abstract")
        .unwrap()
        .is_file_kind(strudel::graph::FileKind::Image));
}
